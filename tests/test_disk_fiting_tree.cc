// DiskFitingTree end-to-end tests: a serialized tree answers every query
// identically to its in-memory StaticFitingTree counterpart, under caches
// smaller than the file, across error bounds, and in fixed-paging mode —
// plus the write path: the delta overlay (inserts/updates/tombstones),
// Compact(), and the shared randomized differential driver.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/io_stats.h"
#include "core/static_fiting_tree.h"
#include "datasets/datasets.h"
#include "storage/disk_fiting_tree.h"
#include "storage/segment_file.h"
#include "tests/oracle.h"
#include "workloads/workloads.h"

namespace {

using fitree::IoStats;
using fitree::StaticFitingTree;
using fitree::storage::DiskFitingTree;
using fitree::storage::LeafCapacity;
using fitree::storage::MakeFixedSegments;
using fitree::storage::SegmentFileOptions;
using fitree::testing::CrudOptions;
using fitree::testing::MakeInitialLoad;
using fitree::testing::PropertyOps;
using fitree::testing::RunCrudDifferential;

constexpr size_t kPageBytes = 256;  // 15 entries/page: tiny data, many pages

// Per-process suffix: ctest registers this binary twice (full suite and
// the `property`-labelled *CrudProperty* filter) and runs them in parallel,
// so shared fixture filenames would race.
std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + name;
}

// Irregular gaps (IoT's day/night jumps) exercise long and short segments.
std::vector<int64_t> TestKeys(size_t n) {
  return fitree::datasets::Iot(n, /*seed=*/7);
}

struct Fixture {
  std::vector<int64_t> keys;
  std::unique_ptr<StaticFitingTree<int64_t>> oracle;
  std::unique_ptr<DiskFitingTree<int64_t>> disk;
  std::string path;

  Fixture(size_t n, double error, size_t cache_pages,
          const std::string& name) {
    keys = TestKeys(n);
    oracle = StaticFitingTree<int64_t>::Create(keys, error);
    path = TempPath(name + ".fit");
    EXPECT_TRUE(fitree::storage::WriteIndexFile(
        path, *oracle, SegmentFileOptions{kPageBytes}));
    DiskFitingTree<int64_t>::Options options;
    options.cache_pages = cache_pages;
    disk = DiskFitingTree<int64_t>::Open(path, options);
    EXPECT_NE(disk, nullptr);
  }

  ~Fixture() { std::remove(path.c_str()); }
};

void ExpectMatchesOracle(Fixture& fx) {
  ASSERT_NE(fx.disk, nullptr);
  EXPECT_EQ(fx.disk->size(), fx.oracle->size());
  EXPECT_EQ(fx.disk->SegmentCount(), fx.oracle->SegmentCount());
  for (size_t i = 0; i < fx.keys.size(); ++i) {
    const auto payload = fx.disk->Lookup(fx.keys[i]);
    ASSERT_TRUE(payload.has_value()) << "key rank " << i;
    EXPECT_EQ(*payload, i);
    EXPECT_EQ(fx.disk->LowerBound(fx.keys[i]), i);
  }
  // Absent probes: strictly inside gaps, before the first and after the
  // last key.
  std::mt19937_64 rng(99);
  for (int t = 0; t < 2000; ++t) {
    const int64_t probe = fitree::workloads::detail::AbsentKey(fx.keys, rng);
    EXPECT_EQ(fx.disk->LowerBound(probe), fx.oracle->LowerBound(probe));
    EXPECT_EQ(fx.disk->Lookup(probe).has_value(),
              fx.oracle->Contains(probe));
  }
  EXPECT_EQ(fx.disk->LowerBound(fx.keys.front() - 5), 0u);
  EXPECT_FALSE(fx.disk->Lookup(fx.keys.front() - 5).has_value());
  EXPECT_EQ(fx.disk->LowerBound(fx.keys.back() + 5), fx.keys.size());
  EXPECT_FALSE(fx.disk->Lookup(fx.keys.back() + 5).has_value());
  EXPECT_FALSE(fx.disk->io_error());
}

TEST(DiskFitingTree, MatchesOracleAcrossErrorBounds) {
  for (const double error : {4.0, 32.0, 256.0}) {
    Fixture fx(3000, error, /*cache_pages=*/8,
               "match_e" + std::to_string(static_cast<int>(error)));
    ExpectMatchesOracle(fx);
  }
}

TEST(DiskFitingTree, RangeScansMatchOracle) {
  Fixture fx(2500, 16.0, /*cache_pages=*/8, "ranges");
  const auto queries = fitree::workloads::MakeRangeQueries<int64_t>(
      fx.keys, 200, /*selectivity=*/0.01, /*seed=*/5);
  for (const auto& q : queries) {
    std::vector<int64_t> got;
    std::vector<uint64_t> got_values;
    fx.disk->ScanRange(q.lo, q.hi, [&](int64_t k, uint64_t v) {
      got.push_back(k);
      got_values.push_back(v);
    });
    std::vector<int64_t> want;
    fx.oracle->ScanRange(q.lo, q.hi, [&](int64_t k) { want.push_back(k); });
    ASSERT_EQ(got, want);
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got_values[i], fx.oracle->LowerBound(got[i]));
    }
    EXPECT_EQ(fx.disk->RangeCount(q.lo, q.hi),
              fx.oracle->RangeCount(q.lo, q.hi));
  }
  // Empty and inverted ranges.
  EXPECT_EQ(fx.disk->RangeCount(fx.keys.back() + 1, fx.keys.back() + 100), 0u);
  EXPECT_EQ(fx.disk->RangeCount(fx.keys[10], fx.keys[5]), 0u);
}

TEST(DiskFitingTree, CacheSmallerThanFileEvictsButStaysCorrect) {
  // 2500 keys at 15/page is ~167 leaf pages; 4 frames forces constant
  // eviction on uniform probes.
  Fixture fx(2500, 16.0, /*cache_pages=*/4, "small_cache");
  ExpectMatchesOracle(fx);
  const IoStats io = fx.disk->io();
  EXPECT_GT(io.pages_read, fx.disk->LeafPageCount());  // many re-reads
  EXPECT_GT(io.cache_hits, 0u);  // windows within a page still hit
}

TEST(DiskFitingTree, FullyResidentCacheStopsReadingAfterWarmup) {
  Fixture fx(2000, 16.0, /*cache_pages=*/4096, "resident");
  for (const int64_t key : fx.keys) fx.disk->Lookup(key);  // warmup
  const uint64_t warm_reads = fx.disk->io().pages_read;
  EXPECT_LE(warm_reads, fx.disk->LeafPageCount());
  for (const int64_t key : fx.keys) fx.disk->Lookup(key);
  EXPECT_EQ(fx.disk->io().pages_read, warm_reads);  // all hits, no I/O
  EXPECT_GT(fx.disk->io().HitRate(), 0.5);
}

TEST(DiskFitingTree, IoStatsDeltaGivesPerPhaseCounts) {
  Fixture fx(2000, 16.0, /*cache_pages=*/8, "stats");
  for (size_t i = 0; i < 100; ++i) fx.disk->Lookup(fx.keys[i]);
  const IoStats before = fx.disk->io();
  for (size_t i = 100; i < 200; ++i) fx.disk->Lookup(fx.keys[i]);
  const IoStats delta = fx.disk->io() - before;
  EXPECT_GT(delta.accesses(), 0u);
  EXPECT_EQ(delta.bytes_read, delta.pages_read * kPageBytes);
  fx.disk->ResetIoStats();
  EXPECT_EQ(fx.disk->io(), IoStats{});
}

TEST(DiskFitingTree, FixedPagingLayoutMatchesOracle) {
  const auto keys = TestKeys(2000);
  const auto oracle = StaticFitingTree<int64_t>::Create(keys, 16.0);
  const size_t cap = LeafCapacity<int64_t>(kPageBytes);
  const auto segments = MakeFixedSegments(std::span<const int64_t>(keys), cap);
  const std::string path = TempPath("fixed.fit");
  ASSERT_TRUE(fitree::storage::WriteSegmentFile<int64_t>(
      path, keys, {}, segments, static_cast<double>(cap),
      SegmentFileOptions{kPageBytes}));
  DiskFitingTree<int64_t>::Options options;
  options.cache_pages = 8;
  auto disk = DiskFitingTree<int64_t>::Open(path, options);
  ASSERT_NE(disk, nullptr);
  EXPECT_EQ(disk->SegmentCount(), (keys.size() + cap - 1) / cap);
  disk->ResetIoStats();
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(disk->Lookup(keys[i]).value_or(UINT64_MAX), i);
  }
  // One segment == one leaf page, so each lookup touches exactly one page
  // (fetched twice: window search, then payload read — the second is a
  // guaranteed cache hit). Rank-ordered probing faults each page once.
  EXPECT_EQ(disk->io().accesses(), 2 * keys.size());
  EXPECT_EQ(disk->io().pages_read, disk->LeafPageCount());
  std::mt19937_64 rng(3);
  for (int t = 0; t < 500; ++t) {
    const int64_t probe = fitree::workloads::detail::AbsentKey(keys, rng);
    EXPECT_EQ(disk->LowerBound(probe), oracle->LowerBound(probe));
  }
  std::remove(path.c_str());
}

TEST(DiskFitingTree, TinyTreesRoundTrip) {
  for (const size_t n : {1u, 2u, 3u}) {
    const std::vector<int64_t> keys = [&] {
      std::vector<int64_t> k;
      for (size_t i = 0; i < n; ++i) k.push_back(10 * static_cast<int64_t>(i));
      return k;
    }();
    const auto oracle = StaticFitingTree<int64_t>::Create(keys, 4.0);
    const std::string path = TempPath("tiny" + std::to_string(n) + ".fit");
    ASSERT_TRUE(fitree::storage::WriteIndexFile(
        path, *oracle, SegmentFileOptions{kPageBytes}));
    auto disk = DiskFitingTree<int64_t>::Open(path);
    ASSERT_NE(disk, nullptr);
    EXPECT_EQ(disk->size(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(disk->Lookup(keys[i]).value_or(UINT64_MAX), i);
    }
    EXPECT_FALSE(disk->Lookup(5).has_value());
    EXPECT_FALSE(disk->Lookup(-1).has_value());
    std::remove(path.c_str());
  }
}

TEST(DiskFitingTree, ReopenIsDeterministic) {
  Fixture fx(1500, 8.0, /*cache_pages=*/16, "reopen");
  auto second = DiskFitingTree<int64_t>::Open(fx.path);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->size(), fx.disk->size());
  EXPECT_EQ(second->SegmentCount(), fx.disk->SegmentCount());
  EXPECT_EQ(second->LeafPageCount(), fx.disk->LeafPageCount());
  EXPECT_DOUBLE_EQ(second->error(), fx.disk->error());
  for (size_t i = 0; i < fx.keys.size(); i += 97) {
    EXPECT_EQ(second->Lookup(fx.keys[i]), fx.disk->Lookup(fx.keys[i]));
  }
}

// ---- Write path: delta overlay + Compact ----

// Serializes `keys`/`values` and opens the result as a writable tree.
std::unique_ptr<DiskFitingTree<int64_t>> OpenWritable(
    const std::vector<int64_t>& keys, const std::vector<uint64_t>& values,
    double error, size_t cache_pages, const std::string& name,
    std::string* path_out) {
  const auto base = StaticFitingTree<int64_t>::Create(keys, values, error);
  *path_out = TempPath(name + ".fit");
  EXPECT_TRUE(fitree::storage::WriteIndexFile(
      *path_out, *base, SegmentFileOptions{kPageBytes}));
  DiskFitingTree<int64_t>::Options options;
  options.cache_pages = cache_pages;
  return DiskFitingTree<int64_t>::Open(*path_out, options);
}

TEST(DiskFitingTree, InsertUpdateDeleteThroughOverlay) {
  const std::vector<int64_t> keys{10, 20, 30, 40, 50};
  const std::vector<uint64_t> values{100, 200, 300, 400, 500};
  std::string path;
  auto disk = OpenWritable(keys, values, 4.0, 8, "overlay", &path);
  ASSERT_NE(disk, nullptr);
  EXPECT_EQ(disk->Lookup(30), std::optional<uint64_t>(300));

  // Insert: new key, duplicate of paged key, duplicate of overlay key.
  EXPECT_TRUE(disk->Insert(25, 7));
  EXPECT_FALSE(disk->Insert(25, 8));
  EXPECT_FALSE(disk->Insert(30, 8));
  EXPECT_EQ(disk->Lookup(25), std::optional<uint64_t>(7));
  EXPECT_EQ(disk->size(), 6u);
  EXPECT_EQ(disk->base_size(), 5u);

  // Update: paged key (override), overlay-only key, absent key.
  EXPECT_TRUE(disk->Update(30, 999));
  EXPECT_EQ(disk->Lookup(30), std::optional<uint64_t>(999));
  EXPECT_TRUE(disk->Update(25, 9));
  EXPECT_EQ(disk->Lookup(25), std::optional<uint64_t>(9));
  EXPECT_FALSE(disk->Update(26, 1));

  // Delete: overlay-only key drops, paged key tombstones, repeat fails.
  EXPECT_TRUE(disk->Delete(25));
  EXPECT_FALSE(disk->Delete(25));
  EXPECT_TRUE(disk->Delete(10));  // the leftmost segment's first_key
  EXPECT_FALSE(disk->Contains(10));
  EXPECT_EQ(disk->size(), 4u);

  // Scans merge the overlay: 20 (paged), 30 (override), 40, 50 (paged).
  std::vector<std::pair<int64_t, uint64_t>> got;
  disk->ScanRange(0, 100, [&](int64_t k, uint64_t v) {
    got.emplace_back(k, v);
  });
  const std::vector<std::pair<int64_t, uint64_t>> want{
      {20, 200}, {30, 999}, {40, 400}, {50, 500}};
  EXPECT_EQ(got, want);
  EXPECT_FALSE(disk->io_error());
  std::remove(path.c_str());
}

TEST(DiskFitingTree, DeleteThenReinsertPagedKey) {
  const std::vector<int64_t> keys{10, 20, 30};
  std::string path;
  auto disk = OpenWritable(keys, {}, 4.0, 8, "reinsert", &path);
  ASSERT_NE(disk, nullptr);
  EXPECT_TRUE(disk->Delete(20));
  EXPECT_EQ(disk->Lookup(20), std::nullopt);
  EXPECT_TRUE(disk->Insert(20, 77));  // tombstone resurrects as override
  EXPECT_EQ(disk->Lookup(20), std::optional<uint64_t>(77));
  EXPECT_EQ(disk->size(), 3u);
  std::remove(path.c_str());
}

TEST(DiskFitingTree, CompactFoldsOverlayAndPersists) {
  const auto keys = TestKeys(2000);
  std::string path;
  auto disk = OpenWritable(keys, {}, 16.0, 8, "compact", &path);
  ASSERT_NE(disk, nullptr);
  std::map<int64_t, uint64_t> oracle;
  for (size_t i = 0; i < keys.size(); ++i) {
    oracle[keys[i]] = static_cast<uint64_t>(i);  // serializer's rank default
  }
  std::mt19937_64 rng(5);
  for (int i = 0; i < 500; ++i) {
    const int64_t absent = fitree::workloads::detail::AbsentKey(keys, rng);
    if (oracle.emplace(absent, 1u).second) {
      ASSERT_TRUE(disk->Insert(absent, 1));
    }
    const int64_t victim = keys[rng() % keys.size()];
    ASSERT_EQ(disk->Delete(victim), oracle.erase(victim) > 0);
  }
  const size_t live = oracle.size();
  EXPECT_GT(disk->DeltaEntries(), 0u);

  ASSERT_TRUE(disk->Compact());
  EXPECT_EQ(disk->DeltaEntries(), 0u);     // overlay folded into the file
  EXPECT_EQ(disk->size(), live);
  EXPECT_EQ(disk->base_size(), live);      // deltas became paged keys
  EXPECT_EQ(disk->Compactions(), 1u);
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(disk->Lookup(k), std::optional<uint64_t>(v)) << k;
  }

  // The compacted file is a valid index on its own: a fresh reader serves
  // the same contents with an empty overlay.
  auto reopened = DiskFitingTree<int64_t>::Open(path);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->size(), live);
  std::vector<std::pair<int64_t, uint64_t>> got;
  reopened->ScanRange(oracle.begin()->first, oracle.rbegin()->first,
                      [&](int64_t k, uint64_t v) { got.emplace_back(k, v); });
  const std::vector<std::pair<int64_t, uint64_t>> want(oracle.begin(),
                                                       oracle.end());
  EXPECT_EQ(got, want);
  std::remove(path.c_str());
}

TEST(DiskFitingTree, EmptyFileBootstrapsThroughOverlay) {
  std::string path;
  auto disk = OpenWritable({}, {}, 8.0, 4, "empty_boot", &path);
  ASSERT_NE(disk, nullptr);
  EXPECT_EQ(disk->size(), 0u);
  EXPECT_EQ(disk->Lookup(5), std::nullopt);
  EXPECT_EQ(disk->RangeCount(-100, 100), 0u);
  EXPECT_TRUE(disk->Insert(5, 50));
  EXPECT_TRUE(disk->Insert(1, 10));
  EXPECT_TRUE(disk->Insert(9, 90));
  EXPECT_TRUE(disk->Delete(5));
  EXPECT_EQ(disk->size(), 2u);
  ASSERT_TRUE(disk->Compact());
  EXPECT_EQ(disk->base_size(), 2u);
  EXPECT_EQ(disk->Lookup(1), std::optional<uint64_t>(10));
  EXPECT_EQ(disk->Lookup(9), std::optional<uint64_t>(90));
  EXPECT_EQ(disk->Lookup(5), std::nullopt);
  std::remove(path.c_str());
}

TEST(DiskFitingTree, DeleteEverythingCompactsToEmptyFile) {
  const std::vector<int64_t> keys{10, 20, 30, 40};
  std::string path;
  auto disk = OpenWritable(keys, {}, 4.0, 4, "empty_compact", &path);
  ASSERT_NE(disk, nullptr);
  for (const int64_t k : keys) ASSERT_TRUE(disk->Delete(k));
  EXPECT_EQ(disk->size(), 0u);
  ASSERT_TRUE(disk->Compact());
  EXPECT_EQ(disk->base_size(), 0u);
  EXPECT_EQ(disk->size(), 0u);
  for (const int64_t k : keys) EXPECT_FALSE(disk->Contains(k));
  // And it bootstraps back up.
  EXPECT_TRUE(disk->Insert(15, 1));
  EXPECT_EQ(disk->Lookup(15), std::optional<uint64_t>(1));
  std::remove(path.c_str());
}

// The shared randomized differential driver, with Compact() folding the
// overlay at every checkpoint — the disk engine's whole CRUD surface
// (overlay reads, overrides, tombstones, compaction, post-compaction
// reads) against the same std::map oracle as the other two engines.
TEST(DiskCrudProperty, DifferentialVsMapOracleWithCompaction) {
  CrudOptions opt;
  opt.seed = 0xD15C;
  opt.ops = PropertyOps(30000);
  opt.key_space = 8000;
  std::map<int64_t, uint64_t> oracle;
  std::vector<int64_t> keys;
  std::vector<uint64_t> values;
  MakeInitialLoad(opt, /*load_every=*/2, &keys, &values, &oracle);
  std::string path;
  auto disk = OpenWritable(keys, values, 16.0, 16, "differential", &path);
  ASSERT_NE(disk, nullptr);
  opt.checkpoint = [&] { ASSERT_TRUE(disk->Compact()); };
  ASSERT_NO_FATAL_FAILURE(RunCrudDifferential(*disk, oracle, opt));
  EXPECT_GT(disk->Compactions(), 0u);
  EXPECT_FALSE(disk->io_error());
  std::remove(path.c_str());
}

TEST(DiskFitingTree, ZipfianProbesRaiseHitRateOverUniform) {
  // ~200 leaf pages; 64 frames hold the Zipfian hot set (each hot key
  // needs its 2-3 window pages resident) but only a third of the file.
  Fixture fx(3000, 16.0, /*cache_pages=*/64, "zipf");
  const auto run = [&](fitree::workloads::Access access) {
    const auto probes = fitree::workloads::MakeLookupProbes<int64_t>(
        fx.keys, 20000, access, /*absent_fraction=*/0.0, 17);
    fx.disk->ResetIoStats();
    for (const int64_t p : probes) fx.disk->Lookup(p);
    return fx.disk->io().HitRate();
  };
  const double uniform = run(fitree::workloads::Access::kUniform);
  const double zipfian = run(fitree::workloads::Access::kZipfian);
  EXPECT_GT(zipfian, uniform + 0.1);
}

}  // namespace
