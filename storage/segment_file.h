// Single-file on-disk layout for a bulk-loaded FITing-Tree:
//
//   page 0                                meta (SegmentFileMeta)
//   pages 1 .. S                          segment table (PackedSegment<K>)
//   pages 1+S .. 1+S+L-1                  leaves (sorted LeafEntry<K>)
//
// Leaves are rank-contiguous with a fixed per-page capacity, so rank r
// lives in leaf page r / leaf_capacity at slot r % leaf_capacity — the
// segment models' rank predictions translate to page numbers with pure
// arithmetic, no per-segment pointers. The writer streams sealed
// (checksummed) pages; the reader serves them back with pread and verifies
// every page before exposing it.

#ifndef FITREE_STORAGE_SEGMENT_FILE_H_
#define FITREE_STORAGE_SEGMENT_FILE_H_

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "core/shrinking_cone.h"
#include "core/static_fiting_tree.h"
#include "storage/page.h"

namespace fitree::storage {

inline constexpr uint64_t kSegmentFileMagic = 0x0031454552544946ull;  // "FITREE1"

// One leaf record: the key plus an opaque 64-bit payload (a row id / rank
// in the benches). Kept standard-layout so pages round-trip by memcpy.
template <typename K>
struct LeafEntry {
  K key;
  uint64_t value;
};

struct SegmentFileMeta {
  uint64_t magic = 0;
  uint32_t format_version = 0;
  uint32_t page_bytes = 0;
  uint64_t key_count = 0;
  uint64_t segment_count = 0;
  uint64_t segment_page_count = 0;
  uint64_t leaf_page_count = 0;
  uint32_t key_bytes = 0;
  uint32_t leaf_entry_bytes = 0;
  uint32_t leaf_capacity = 0;     // LeafEntry records per leaf page
  uint32_t segment_capacity = 0;  // PackedSegment records per segment page
  double error = 0.0;             // lookup window half-width the models obey
};

template <typename K>
constexpr size_t LeafCapacity(size_t page_bytes) {
  return (page_bytes - kPageHeaderBytes) / sizeof(LeafEntry<K>);
}

template <typename K>
constexpr size_t SegmentCapacity(size_t page_bytes) {
  return (page_bytes - kPageHeaderBytes) / sizeof(PackedSegment<K>);
}

struct SegmentFileOptions {
  size_t page_bytes = kDefaultPageBytes;
};

// Fixed-size paging layout expressed in segment-table form (the paper's
// "Fixed" baseline, Sec 7.1): one zero-slope segment per run of
// `segment_length` keys, predicting every key at the run's start. Serialize
// it with error = segment_length so the lookup window spans the whole
// segment and the in-page search degenerates to binary search of the page —
// structurally the same read path as FITing-Tree, boundaries data-blind.
template <typename K>
std::vector<PackedSegment<K>> MakeFixedSegments(std::span<const K> keys,
                                                size_t segment_length) {
  std::vector<PackedSegment<K>> segments;
  if (segment_length == 0) segment_length = 1;
  for (size_t begin = 0; begin < keys.size(); begin += segment_length) {
    const size_t length = std::min(segment_length, keys.size() - begin);
    segments.push_back({keys[begin], 0.0, static_cast<double>(begin),
                        static_cast<uint64_t>(begin),
                        static_cast<uint64_t>(length)});
  }
  return segments;
}

// Writes keys + payloads + segment table as one index file. `values` maps
// rank -> payload and may be empty, in which case the payload is the rank
// itself. `segments` must partition [0, keys.size()) in order, and every
// key's predicted rank must be within `error` of its true rank (true by
// construction for SegmentShrinkingCone output and MakeFixedSegments with
// error >= segment_length - 1).
template <typename K>
bool WriteSegmentFile(const std::string& path, std::span<const K> keys,
                      std::span<const uint64_t> values,
                      std::span<const PackedSegment<K>> segments, double error,
                      const SegmentFileOptions& opts = {}) {
  const size_t page_bytes = opts.page_bytes;
  if (page_bytes < kMinPageBytes) return false;
  const size_t leaf_cap = LeafCapacity<K>(page_bytes);
  const size_t seg_cap = SegmentCapacity<K>(page_bytes);
  if (leaf_cap == 0 || seg_cap == 0) return false;
  if (!values.empty() && values.size() != keys.size()) return false;
  uint64_t covered = 0;
  for (const auto& s : segments) {
    if (s.start != covered) return false;
    covered += s.length;
  }
  if (covered != keys.size()) return false;

  const uint64_t seg_pages = (segments.size() + seg_cap - 1) / seg_cap;
  const uint64_t leaf_pages = (keys.size() + leaf_cap - 1) / leaf_cap;

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = true;
  std::vector<std::byte> page(page_bytes, std::byte{0});
  const auto emit = [&](PageType type, uint32_t page_id, uint32_t count) {
    SealPage(page.data(), page_bytes, type, page_id, count);
    ok = ok && std::fwrite(page.data(), 1, page_bytes, f) == page_bytes;
    std::fill(page.begin(), page.end(), std::byte{0});
  };

  SegmentFileMeta meta;
  meta.magic = kSegmentFileMagic;
  meta.format_version = kPageFormatVersion;
  meta.page_bytes = static_cast<uint32_t>(page_bytes);
  meta.key_count = keys.size();
  meta.segment_count = segments.size();
  meta.segment_page_count = seg_pages;
  meta.leaf_page_count = leaf_pages;
  meta.key_bytes = sizeof(K);
  meta.leaf_entry_bytes = sizeof(LeafEntry<K>);
  meta.leaf_capacity = static_cast<uint32_t>(leaf_cap);
  meta.segment_capacity = static_cast<uint32_t>(seg_cap);
  meta.error = error;
  StoreAs(page.data() + kPageHeaderBytes, meta);
  emit(PageType::kMeta, 0, 1);

  uint32_t page_id = 1;
  for (uint64_t p = 0; p < seg_pages; ++p, ++page_id) {
    const size_t begin = p * seg_cap;
    const size_t end = std::min(segments.size(), begin + seg_cap);
    for (size_t i = begin; i < end; ++i) {
      StoreAs(page.data() + kPageHeaderBytes +
                  (i - begin) * sizeof(PackedSegment<K>),
              segments[i]);
    }
    emit(PageType::kSegmentTable, page_id, static_cast<uint32_t>(end - begin));
  }

  for (uint64_t p = 0; p < leaf_pages; ++p, ++page_id) {
    const size_t begin = p * leaf_cap;
    const size_t end = std::min(keys.size(), begin + leaf_cap);
    for (size_t r = begin; r < end; ++r) {
      const LeafEntry<K> entry{keys[r], values.empty()
                                            ? static_cast<uint64_t>(r)
                                            : values[r]};
      StoreAs(page.data() + kPageHeaderBytes +
                  (r - begin) * sizeof(LeafEntry<K>),
              entry);
    }
    emit(PageType::kLeaf, page_id, static_cast<uint32_t>(end - begin));
  }

  ok = ok && std::fflush(f) == 0;
  std::fclose(f);
  return ok;
}

// Serializes a built in-memory tree using its exported segment table and
// stored error bound. The tree's explicit payloads are written when
// present; otherwise the payload is the rank (the shared convention).
template <typename K>
bool WriteIndexFile(const std::string& path, const StaticFitingTree<K>& tree,
                    const SegmentFileOptions& opts = {}) {
  const auto segments = tree.ExportSegmentTable();
  return WriteSegmentFile<K>(path, std::span<const K>(tree.data()),
                             std::span<const uint64_t>(tree.values()),
                             std::span<const PackedSegment<K>>(segments),
                             tree.error(), opts);
}

// pread-based reader. Open() validates the meta page; every subsequent
// page read re-verifies checksum, type, and id, so a corrupted or
// misdirected page is rejected instead of served.
template <typename K>
class SegmentFileReader final : public PageSource {
 public:
  SegmentFileReader() = default;
  ~SegmentFileReader() override { Close(); }
  SegmentFileReader(const SegmentFileReader&) = delete;
  SegmentFileReader& operator=(const SegmentFileReader&) = delete;

  bool Open(const std::string& path) {
    Close();
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0) return Fail("open() failed");

    // Bootstrap: the meta block sits at a fixed offset in page 0, and
    // page_bytes is only known once it is read. Peek, sanity-check, then
    // verify the whole meta page at its declared size.
    std::byte peek[kPageHeaderBytes + sizeof(SegmentFileMeta)];
    if (::pread(fd_, peek, sizeof(peek), 0) !=
        static_cast<ssize_t>(sizeof(peek))) {
      return Fail("file too short for a meta page");
    }
    const auto meta = LoadAs<SegmentFileMeta>(peek + kPageHeaderBytes);
    if (meta.magic != kSegmentFileMagic) return Fail("bad magic");
    if (meta.format_version != kPageFormatVersion) {
      return Fail("unsupported format version");
    }
    if (meta.page_bytes < kMinPageBytes || meta.page_bytes > (1u << 26)) {
      return Fail("implausible page size");
    }
    if (meta.key_bytes != sizeof(K) ||
        meta.leaf_entry_bytes != sizeof(LeafEntry<K>)) {
      return Fail("key type mismatch");
    }
    if (meta.leaf_capacity != LeafCapacity<K>(meta.page_bytes) ||
        meta.segment_capacity != SegmentCapacity<K>(meta.page_bytes)) {
      return Fail("capacity mismatch");
    }
    // The record counts must agree with the page counts: a CRC only proves
    // integrity, not that the header fields are in range, and everything
    // downstream (reserve sizes, per-page loops) trusts these bounds.
    const auto pages_for = [](uint64_t records, uint64_t capacity) {
      return (records + capacity - 1) / capacity;
    };
    if (pages_for(meta.segment_count, meta.segment_capacity) !=
            meta.segment_page_count ||
        pages_for(meta.key_count, meta.leaf_capacity) !=
            meta.leaf_page_count) {
      return Fail("record counts disagree with page counts");
    }

    std::vector<std::byte> page(meta.page_bytes);
    if (::pread(fd_, page.data(), page.size(), 0) !=
        static_cast<ssize_t>(page.size())) {
      return Fail("meta page read failed");
    }
    if (!VerifyPage(page.data(), page.size(), PageType::kMeta, 0)) {
      return Fail("meta page checksum mismatch");
    }
    meta_ = meta;

    struct stat st {};
    if (::fstat(fd_, &st) != 0) return Fail("fstat() failed");
    const uint64_t expected_pages =
        1 + meta_.segment_page_count + meta_.leaf_page_count;
    if (static_cast<uint64_t>(st.st_size) !=
        expected_pages * meta_.page_bytes) {
      return Fail("file size disagrees with meta page counts");
    }
    return true;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    meta_ = SegmentFileMeta{};
  }

  bool is_open() const { return fd_ >= 0; }
  const SegmentFileMeta& meta() const { return meta_; }
  const std::string& error_message() const { return error_; }
  size_t page_bytes() const { return meta_.page_bytes; }
  uint64_t page_count() const {
    return 1 + meta_.segment_page_count + meta_.leaf_page_count;
  }

  // File-global page id of the `leaf_index`-th leaf page.
  uint32_t LeafPageId(uint64_t leaf_index) const {
    return static_cast<uint32_t>(1 + meta_.segment_page_count + leaf_index);
  }

  bool ReadPageInto(uint32_t page_id, std::byte* out) override {
    if (fd_ < 0 || page_id >= page_count()) return false;
    const ssize_t n = ::pread(fd_, out, meta_.page_bytes,
                              static_cast<off_t>(page_id) *
                                  static_cast<off_t>(meta_.page_bytes));
    if (n != static_cast<ssize_t>(meta_.page_bytes)) return false;
    return VerifyPage(out, meta_.page_bytes, ExpectedType(page_id), page_id);
  }

  // Reads and validates the whole segment table (it lives in memory in the
  // paper's design; only leaves stay disk-resident).
  bool ReadSegmentTable(std::vector<PackedSegment<K>>* out) {
    out->clear();
    out->reserve(meta_.segment_count);
    std::vector<std::byte> page(meta_.page_bytes);
    for (uint64_t p = 0; p < meta_.segment_page_count; ++p) {
      const uint32_t page_id = static_cast<uint32_t>(1 + p);
      if (!ReadPageInto(page_id, page.data())) return false;
      const PageHeader h = LoadAs<PageHeader>(page.data());
      // count is attacker-controlled until checked: reading past
      // segment_capacity records would run off the page buffer.
      if (h.count > meta_.segment_capacity) return false;
      for (uint32_t i = 0; i < h.count; ++i) {
        out->push_back(LoadAs<PackedSegment<K>>(
            page.data() + kPageHeaderBytes + i * sizeof(PackedSegment<K>)));
      }
    }
    return out->size() == meta_.segment_count;
  }

 private:
  PageType ExpectedType(uint32_t page_id) const {
    if (page_id == 0) return PageType::kMeta;
    if (page_id <= meta_.segment_page_count) return PageType::kSegmentTable;
    return PageType::kLeaf;
  }

  bool Fail(const char* why) {
    error_ = why;
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    return false;
  }

  int fd_ = -1;
  SegmentFileMeta meta_{};
  std::string error_;
};

}  // namespace fitree::storage

#endif  // FITREE_STORAGE_SEGMENT_FILE_H_
